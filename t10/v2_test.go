package t10

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/dtype"
	"repro/internal/expr"
	"repro/internal/kernel"
	"repro/internal/models"
	"repro/internal/sema"
)

// sameExecutables asserts two compiles selected bit-identical plans:
// same idle/active partition decisions and estimates for every op.
func sameExecutables(t *testing.T, a, b *Executable) {
	t.Helper()
	if len(a.Schedule.Assignments) != len(b.Schedule.Assignments) {
		t.Fatalf("assignment counts differ: %d vs %d",
			len(a.Schedule.Assignments), len(b.Schedule.Assignments))
	}
	for i := range a.Schedule.Assignments {
		x, y := &a.Schedule.Assignments[i], &b.Schedule.Assignments[i]
		if x.Idle.Plan.String() != y.Idle.Plan.String() || x.Active.Plan.String() != y.Active.Plan.String() {
			t.Fatalf("op %d: plans differ:\n%s\nvs\n%s", i, x.Active.Plan, y.Active.Plan)
		}
		if x.Idle.Est != y.Idle.Est || x.Active.Est != y.Active.Est {
			t.Fatalf("op %d: estimates differ", i)
		}
	}
}

// TestV1ShimEquivalence pins the deprecated shims to the v2 entry
// points: CompileModel/SearchOp on one fresh compiler and
// Compile/Search on another must produce bit-identical plans AND leave
// identical plan-cache contents behind (same entry count, same set of
// answerable ops).
func TestV1ShimEquivalence(t *testing.T) {
	spec := device.IPUMK2()
	v1, err := New(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	v2, err := New(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := models.BERT(1)
	e := expr.MatMul("mm", 512, 512, 2048, dtype.FP16)

	r1, err := v1.SearchOp(e)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := v2.Search(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Pareto) != len(r2.Pareto) {
		t.Fatalf("pareto sizes differ: %d vs %d", len(r1.Pareto), len(r2.Pareto))
	}
	for i := range r1.Pareto {
		if r1.Pareto[i].Plan.String() != r2.Pareto[i].Plan.String() || r1.Pareto[i].Est != r2.Pareto[i].Est {
			t.Fatalf("pareto[%d] differs between SearchOp and Search", i)
		}
	}

	e1, err := v1.CompileModel(m)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := v2.Compile(context.Background(), models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	sameExecutables(t, e1, e2)

	// identical cache contents: same entry count, and every unique op of
	// the workload answerable (or not) identically from both caches
	if n1, n2 := v1.PlanCache().Len(), v2.PlanCache().Len(); n1 != n2 {
		t.Fatalf("cache entry counts differ: v1=%d v2=%d", n1, n2)
	}
	est1, err := v1.EstimateCost(m)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := v2.EstimateCost(m)
	if err != nil {
		t.Fatal(err)
	}
	if est1 != est2 {
		t.Fatalf("cache probe views differ: v1=%+v v2=%+v", est1, est2)
	}
	if est1.CachedOps != est1.Ops {
		t.Fatalf("compiled model not fully cached: %+v", est1)
	}
	if _, err := v1.EstimateOpCost(e); err != nil {
		t.Fatal(err)
	}

	// the ctx shims too
	if _, err := v1.CompileModelCtx(context.Background(), models.BERT(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := v1.SearchOpCtx(context.Background(), e); err != nil {
		t.Fatal(err)
	}
}

// TestWithCostFuncMatchesRegisterCostFunc pins construction-scoped
// registration to the deprecated mutation path, and the monotone
// declaration to the opaque one: all three select bit-identical Pareto
// sets (the compute floor only prunes, never changes selection).
func TestWithCostFuncMatchesRegisterCostFunc(t *testing.T) {
	spec := device.IPUMK2().Subset(64)
	f := func(task kernel.Task) float64 {
		return float64(task.M)*float64(task.N)*float64(task.K)*1e-3 +
			float64(task.InBytes+task.OutBytes)*1e-4 + 5
	}
	e := expr.MatMul("special", 256, 256, 256, dtype.FP16)

	viaOption, err := New(spec, DefaultOptions(), WithCostFunc("special", f))
	if err != nil {
		t.Fatal(err)
	}
	viaMonotone, err := New(spec, DefaultOptions(), WithMonotoneCostFunc("special", f))
	if err != nil {
		t.Fatal(err)
	}
	viaMutation, err := New(spec, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	viaMutation.RegisterCostFunc("special", f)

	rs := make([][]string, 3)
	for i, c := range []*Compiler{viaOption, viaMonotone, viaMutation} {
		r, err := c.Search(context.Background(), e)
		if err != nil {
			t.Fatal(err)
		}
		for _, cand := range r.Pareto {
			rs[i] = append(rs[i], cand.Plan.String())
		}
	}
	for i := 1; i < 3; i++ {
		if len(rs[i]) != len(rs[0]) {
			t.Fatalf("registration path %d: %d Pareto plans, want %d", i, len(rs[i]), len(rs[0]))
		}
		for j := range rs[0] {
			if rs[i][j] != rs[0][j] {
				t.Fatalf("registration path %d: plan %d differs", i, j)
			}
		}
	}
}

// TestDetachOnCancelWarmsCache is the detach contract: a cancelled
// Search with WithDetachOnCancel still returns ctx.Err() immediately,
// but the enumeration finishes in the background and lands in the plan
// cache, so the retry is a warm hit with bit-identical plans. Without
// the option, cancellation caches nothing.
func TestDetachOnCancelWarmsCache(t *testing.T) {
	c, err := New(device.IPUMK2(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	// without detach: nothing cached
	e0 := expr.MatMul("plain", 512, 512, 1024, dtype.FP16)
	if _, err := c.Search(dead, e0); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: err = %v, want context.Canceled", err)
	}
	if est, _ := c.EstimateOpCost(e0); est.CachedOps != 0 {
		t.Fatal("cancelled search without detach left a cache entry")
	}

	// with detach: the caller still gets ctx.Err() at once...
	e := expr.MatMul("detached", 512, 512, 1024, dtype.FP16)
	if _, err := c.Search(dead, e, WithDetachOnCancel()); !errors.Is(err, context.Canceled) {
		t.Fatalf("detached search: err = %v, want context.Canceled", err)
	}
	// ...and the background enumeration completes into the cache
	deadline := time.Now().Add(30 * time.Second)
	for {
		if est, err := c.EstimateOpCost(e); err == nil && est.CachedOps == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("detached search never reached the plan cache")
		}
		time.Sleep(5 * time.Millisecond)
	}
	warm, err := c.Search(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := New(device.IPUMK2(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := ref.Search(context.Background(), e)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Pareto) != len(fresh.Pareto) {
		t.Fatalf("detached result differs from a fresh search: %d vs %d plans", len(warm.Pareto), len(fresh.Pareto))
	}
	for i := range warm.Pareto {
		if warm.Pareto[i].Plan.String() != fresh.Pareto[i].Plan.String() || warm.Pareto[i].Est != fresh.Pareto[i].Est {
			t.Fatalf("detached pareto[%d] differs from a fresh search", i)
		}
	}
}

// TestDetachOnCancelModelHoldsSlots pins detach on the shared-budget
// path: a cancelled model compile returns immediately, keeps its
// admission slots until the in-flight work drains, and eventually
// releases everything (no slot leak, live-worker peak within budget).
func TestDetachOnCancelModelHoldsSlots(t *testing.T) {
	pool := sema.NewShared(2, 4)
	opts := DefaultOptions()
	opts.Workers = 2
	opts.SharedPool = pool
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := c.Compile(ctx, models.BERT(1), WithDetachOnCancel()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for pool.InUse() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("detached compile never released its %d budget slots", pool.InUse())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if peak := pool.Peak(); peak > 2 {
		t.Fatalf("live worker peak %d exceeds the shared budget 2", peak)
	}
	// a retry proceeds normally (and benefits from whatever was warmed)
	if _, err := c.Compile(context.Background(), models.BERT(1)); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionWeight pins the cost-weighted admission semantics on a
// shared pool: weight-N requests need N free slots or shed, weight 0
// bypasses admission entirely, and oversized weights clamp to the pool
// capacity instead of erroring.
func TestAdmissionWeight(t *testing.T) {
	pool := sema.NewShared(4, 0) // no queue: saturation fails fast
	opts := DefaultOptions()
	opts.Workers = 4
	opts.SharedPool = pool
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e := expr.MatMul("mm", 256, 256, 512, dtype.FP16)
	if _, err := c.Search(context.Background(), e); err != nil {
		t.Fatal(err) // warm the cache so the weighted calls below are instant
	}

	// occupy 2 of 4 slots: a weight-3 request must shed...
	if !pool.TryAcquire(2) {
		t.Fatal("could not occupy the pool")
	}
	if _, err := c.Search(context.Background(), e, WithAdmissionWeight(3)); !errors.Is(err, sema.ErrSaturated) {
		t.Fatalf("weight 3 on a half-full pool: err = %v, want ErrSaturated", err)
	}
	// ...a weight-2 request fits exactly...
	if _, err := c.Search(context.Background(), e, WithAdmissionWeight(2)); err != nil {
		t.Fatalf("weight 2 on a half-full pool: %v", err)
	}
	// ...and weight 0 bypasses admission even on a FULL pool
	if !pool.TryAcquire(2) {
		t.Fatal("could not fill the pool")
	}
	if _, err := c.Search(context.Background(), e, WithAdmissionWeight(0)); err != nil {
		t.Fatalf("weight 0 on a full pool: %v", err)
	}
	pool.Release(4)

	// oversized weights clamp to capacity instead of erroring
	if _, err := c.Search(context.Background(), e, WithAdmissionWeight(99)); err != nil {
		t.Fatalf("clamped oversized weight: %v", err)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d slots leaked", pool.InUse())
	}
}

// TestWeightedRequestUsesItsReservation pins the prepaid-credit path:
// a request admitted at the full pool capacity must still parallelize —
// its helper workers spend the slots the request already holds
// (sema.Credit) instead of failing TryAcquire against its own
// reservation. The instrumented live-worker peak proves helpers ran,
// and must still never exceed the capacity.
func TestWeightedRequestUsesItsReservation(t *testing.T) {
	const capacity = 4
	pool := sema.NewShared(capacity, 4)
	opts := DefaultOptions()
	opts.Workers = capacity
	opts.SharedPool = pool
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Compile(context.Background(), models.BERT(1), WithAdmissionWeight(capacity)); err != nil {
		t.Fatal(err)
	}
	if peak := pool.Peak(); peak < 2 {
		t.Errorf("live worker peak %d: a full-capacity reservation compiled single-threaded", peak)
	}
	if peak := pool.Peak(); peak > capacity {
		t.Fatalf("live worker peak %d exceeds the pool capacity %d", peak, capacity)
	}
	if pool.InUse() != 0 {
		t.Fatalf("%d slots leaked", pool.InUse())
	}
}

// TestEstimateCostWeights pins the estimate → weight mapping: cached
// requests weigh 0, a single cold op weighs a slot or two, and a cold
// multi-layer model climbs but clamps at the capacity.
func TestEstimateCostWeights(t *testing.T) {
	c, err := New(device.IPUMK2(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := models.BERT(1)
	est, err := c.EstimateCost(m)
	if err != nil {
		t.Fatal(err)
	}
	if est.ColdOps != est.Ops || est.CachedOps != 0 {
		t.Fatalf("fresh compiler estimate: %+v, want all ops cold", est)
	}
	if est.ColdFops == 0 {
		t.Fatal("cold model estimated zero partition candidates")
	}
	if w := est.Weight(8); w < 2 || w > 8 {
		t.Fatalf("cold BERT weight = %d, want within (1, capacity]", w)
	}
	if w := est.Weight(4); w != 4 {
		t.Fatalf("cold BERT weight on a tiny pool = %d, want clamped to 4", w)
	}

	if _, err := c.Compile(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	est, err = c.EstimateCost(models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.CachedOps != est.Ops || est.ColdOps != 0 {
		t.Fatalf("compiled model estimate: %+v, want fully cached", est)
	}
	if w := est.Weight(8); w != 0 {
		t.Fatalf("fully cached weight = %d, want 0", w)
	}
}
