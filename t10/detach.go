package t10

import (
	"context"
	"sync/atomic"
)

// DetachLimit caps how many WithDetachOnCancel requests may be running
// detached — cancelled but still holding their admission slots while
// their in-flight searches finish — at once. Without a cap, a storm of
// cancelled heavy compiles pins the shared worker budget: every one of
// them legitimately holds its slots until its background work drains,
// and live traffic starves behind work nobody is waiting for. With a
// cap, the first max cancellations detach (cache warm-up proceeds) and
// the rest degrade to plain cancellation: in-flight work stops, slots
// come back, and the rejection is counted.
//
// One DetachLimit is shared by every compiler of a server
// (Options.DetachLimit); it is safe for concurrent use. A nil
// *DetachLimit means no cap (v2 behaviour, nothing counted).
type DetachLimit struct {
	max      int64
	active   atomic.Int64
	rejected atomic.Int64
}

// NewDetachLimit returns a cap of max concurrently detached requests;
// max <= 0 means unlimited (the limiter then only counts, which is
// still worth wiring into /stats).
func NewDetachLimit(max int) *DetachLimit {
	return &DetachLimit{max: int64(max)}
}

// Active returns how many requests are currently running detached.
func (l *DetachLimit) Active() int64 {
	if l == nil {
		return 0
	}
	return l.active.Load()
}

// Rejected returns how many cancellations wanted to detach but were
// degraded to plain cancellation by the cap.
func (l *DetachLimit) Rejected() int64 {
	if l == nil {
		return 0
	}
	return l.rejected.Load()
}

// tryEnter claims a detach slot; a refusal is counted in Rejected.
// A nil limiter always grants (and counts nothing).
func (l *DetachLimit) tryEnter() bool {
	if l == nil {
		return true
	}
	for {
		n := l.active.Load()
		if l.max > 0 && n >= l.max {
			l.rejected.Add(1)
			return false
		}
		if l.active.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// exit returns a detach slot.
func (l *DetachLimit) exit() {
	if l != nil {
		l.active.Add(-1)
	}
}

// detachRun runs one request body with detach-on-cancel semantics: the
// work runs on its own goroutine under a context that survives the
// request's cancellation, holding the admission slots (leave) until it
// finishes — the work is still running, so the budget must still see
// it. The caller gets the result when the work completes first, or
// ctx.Err() the moment ctx dies.
//
// On cancellation the gate decides the work's fate: a granted detach
// slot lets the in-flight searches finish and enter the plan cache
// (the retry finds warm entries), with a watcher returning the slot
// when they drain; a refused one cancels the derived context, so the
// work stops promptly and the admission slots come back — exactly a
// plain cancellation, which is the cap's point.
func detachRun[T any](ctx context.Context, gate *DetachLimit, leave func(), run func(context.Context) (T, error)) (T, error) {
	type outcome struct {
		v   T
		err error
	}
	dctx, dcancel := context.WithCancel(context.WithoutCancel(ctx))
	done := make(chan outcome, 1)
	go func() {
		defer leave()
		v, err := run(dctx)
		done <- outcome{v, err}
	}()
	select {
	case o := <-done:
		dcancel()
		return o.v, o.err
	case <-ctx.Done():
		if gate.tryEnter() {
			go func() {
				<-done
				gate.exit()
				dcancel()
			}()
		} else {
			dcancel()
		}
		var zero T
		return zero, ctx.Err()
	}
}
