package t10

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/device"
	"repro/internal/dtype"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/interop"
	"repro/internal/scaleout"
)

// shardedChain builds a linear model of n rows×dim×dim matmuls, each
// with its own weight.
func shardedChain(name string, n, rows, dim int) *graph.Model {
	m := &graph.Model{Name: name, BatchSize: 1}
	for i := 0; i < n; i++ {
		src := i - 1
		if i == 0 {
			src = graph.External
		}
		m.Ops = append(m.Ops, graph.Op{
			Name:         fmt.Sprintf("mm%d", i),
			Expr:         expr.MatMul(fmt.Sprintf("%s-mm%d", name, i), rows, dim, dim, dtype.FP16),
			WeightInputs: []int{1},
			Sources:      []int{src, graph.External},
			Repeat:       1,
		})
	}
	return m
}

func TestShardedEquivalence(t *testing.T) {
	ctx := context.Background()

	t.Run("one chip is bit-identical to plain Compile", func(t *testing.T) {
		c := mk2Compiler(t)
		m := shardedChain("eq1", 3, 256, 512)
		plain, err := c.Compile(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		se, err := c.CompileSharded(ctx, m, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(se.Stages) != 1 || se.Chips() != 1 {
			t.Fatalf("1-chip sharded compile produced %d stages on %d chips",
				len(se.Stages), se.Chips())
		}
		if se.Stages[0].Model != m {
			t.Fatal("1-chip stage did not compile the original model")
		}
		if !reflect.DeepEqual(se.Stages[0].Schedule, plain.Schedule) {
			t.Fatal("1-chip sharded schedule differs from plain Compile")
		}
		if !reflect.DeepEqual(se.Stages[0].Plans, plain.Plans) {
			t.Fatal("1-chip sharded plans differ from plain Compile")
		}
		rep := se.Simulate()
		if rep.TransferNs != 0 || rep.BubbleNs != 0 {
			t.Fatalf("1-chip simulation charges transfer %g / bubble %g",
				rep.TransferNs, rep.BubbleNs)
		}
		if plainNs := plain.Simulate().TotalNs; rep.TotalNs != plainNs {
			t.Fatalf("1-chip simulated %g, plain %g", rep.TotalNs, plainNs)
		}
	})

	t.Run("multi-chip at least matches single-chip", func(t *testing.T) {
		c := mk2Compiler(t)
		m := shardedChain("eq2", 4, 1024, 2048)
		plain, err := c.Compile(ctx, m)
		if err != nil {
			t.Fatal(err)
		}
		single := plain.Simulate().TotalNs
		sr, err := c.CompileShardedWithResult(ctx, m, 2)
		if err != nil {
			t.Fatal(err)
		}
		se := sr.Executable
		rep := se.Simulate()
		if rep.TotalNs <= 0 || math.IsInf(rep.TotalNs, 0) || math.IsNaN(rep.TotalNs) {
			t.Fatalf("sharded simulation = %g, want finite positive", rep.TotalNs)
		}
		// the whole-model single-chip candidate is always enumerated and
		// selection is by simulated price, so multi-chip can never lose
		if rep.TotalNs > single*(1+1e-9) {
			t.Fatalf("2-chip simulated %g worse than single-chip %g", rep.TotalNs, single)
		}
		if sr.Search.Enumerated < 2 {
			t.Fatalf("outer search enumerated only %d candidates", sr.Search.Enumerated)
		}
		t.Logf("2-chip: %.3f ms vs single %.3f ms (%d stages, %d chips, %d candidates)",
			rep.LatencyMs(), single/1e6, len(se.Stages), se.Chips(), sr.Search.Enumerated)
	})

	t.Run("model too large for one chip shards finitely", func(t *testing.T) {
		// a generation with starved per-core SRAM: every op fits a chip on
		// its own, but the chain's reconciled resident set (all stages'
		// weights live on-chip at once) does not — only a pipeline cut
		// shrinks the footprint
		spec := device.IPUMK2()
		small := *spec
		small.Name = "MK2-TINY"
		small.Cores = 64
		small.CoreMemBytes = 128 << 10
		c, err := New(&small, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		m := shardedChain("eq3", 4, 512, 1024)
		if _, err := c.Compile(ctx, m); err == nil {
			t.Fatal("oversized model compiled on one starved chip")
		} else {
			var ie *interop.InfeasibleError
			if !errors.As(err, &ie) {
				t.Fatalf("plain compile err = %T %v, want *interop.InfeasibleError", err, err)
			}
		}
		if _, err := c.CompileSharded(ctx, m, 1); err == nil {
			t.Fatal("1-chip sharded compile of oversized model succeeded")
		} else {
			var se *scaleout.InfeasibleError
			if !errors.As(err, &se) {
				t.Fatalf("1-chip sharded err = %T %v, want *scaleout.InfeasibleError", err, err)
			}
		}
		se, err := c.CompileSharded(ctx, m, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(se.Stages) < 2 {
			t.Fatalf("oversized model sharded into %d stages, want a pipeline cut", len(se.Stages))
		}
		rep := se.Simulate()
		if rep.TotalNs <= 0 || math.IsInf(rep.TotalNs, 0) || math.IsNaN(rep.TotalNs) {
			t.Fatalf("sharded simulation = %g, want finite positive", rep.TotalNs)
		}
		if rep.TransferNs <= 0 {
			t.Fatal("pipeline cut simulated no interconnect transfer")
		}
		t.Logf("oversized model: %d stages on %d chips, %.3f ms (%.0f%% transfer)",
			len(se.Stages), se.Chips(), rep.LatencyMs(), 100*rep.TransferNs/rep.TotalNs)
	})
}

func TestShardedMicrobatchesReported(t *testing.T) {
	c := mk2Compiler(t)
	m := shardedChain("mb", 4, 1024, 1024)
	se, err := c.CompileSharded(context.Background(), m, 2, WithPipelineMicrobatches(8))
	if err != nil {
		t.Fatal(err)
	}
	if se.Partition.Microbatches != 8 {
		t.Fatalf("Microbatches = %d, want 8", se.Partition.Microbatches)
	}
	rep := se.Simulate()
	if rep.TotalNs <= 0 {
		t.Fatal("no latency")
	}
}

func TestShardedRejectsMissingInterconnect(t *testing.T) {
	spec := device.IPUMK2()
	bare := *spec
	bare.Name = "MK2-NOIC"
	bare.Interconnect = device.Interconnect{}
	c, err := New(&bare, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	m := shardedChain("noic", 2, 256, 512)
	if _, err := c.CompileSharded(context.Background(), m, 2); err == nil {
		t.Fatal("2-chip compile without an interconnect descriptor succeeded")
	}
	// one chip needs no fabric
	if _, err := c.CompileSharded(context.Background(), m, 1); err != nil {
		t.Fatal(err)
	}
}
