package t10

// CompileOption is request-scoped policy for one Compile or Search
// call, as opposed to the compiler-lifetime knobs in Options and the
// construction-scoped CompilerOption values. A request with no options
// behaves like v1: admission weight 1, cancellation abandons in-flight
// work.
type CompileOption func(*reqOptions)

// reqOptions is the resolved per-request policy.
type reqOptions struct {
	weight       int  // admission slots on a shared pool; 0 = cache-probe fast path
	detach       bool // finish + cache in-flight op searches on cancellation
	telemetry    TelemetryLevel
	debug        DebugLevel
	microbatches int // pipeline depth for CompileSharded; <= 1 = no pipelining
}

func resolveReqOptions(opts []CompileOption) reqOptions {
	ro := reqOptions{weight: 1, telemetry: TelemetryBasic}
	for _, o := range opts {
		if o != nil {
			o(&ro)
		}
	}
	return ro
}

// WithAdmissionWeight sets how many worker-budget slots the request
// acquires on a shared pool (Options.SharedPool) — cost-weighted
// admission. The default is 1: every request costs one slot, however
// expensive. A server that prices requests first (Compiler.EstimateCost
// and CostEstimate.Weight) can give a cold 70B-layer compile several
// slots — so a few of them saturate the pool instead of dozens — while
// slots of headroom keep absorbing ordinary traffic. The reservation is
// not dead weight: the slots beyond the caller's own come back to the
// request's worker pools as prepaid helper credit (sema.Credit), so a
// heavily weighted compile parallelizes into exactly the capacity it
// was charged for.
//
// Weight 0 is the cache-probe fast path: the request declares it will
// be answered from the plan cache, does no search work, and skips
// admission entirely — it can never be shed with sema.ErrSaturated. A
// mis-declared weight-0 request that misses the cache still compiles
// correctly, just outside the budget; the estimate is advisory.
// Negative weights count as 0; weights above the pool capacity clamp
// to it. Private (non-shared) pools ignore the weight.
func WithAdmissionWeight(slots int) CompileOption {
	return func(ro *reqOptions) {
		if slots < 0 {
			slots = 0
		}
		ro.weight = slots
	}
}

// WithTelemetry sets how much telemetry the request collects into its
// CompileResult/SearchResult. The default is TelemetryBasic — stage
// walls, cache routes, admission weight — which is cheap enough for
// every production request. TelemetryOff skips collection entirely
// (the searches run the exact pre-telemetry path); TelemetryFull adds
// the search-space counters. Collection never changes plan selection
// at any level — the equivalence suite pins that.
func WithTelemetry(level TelemetryLevel) CompileOption {
	return func(ro *reqOptions) { ro.telemetry = level }
}

// WithDebug opts the request into the search trace: at DebugSearch,
// cold enumerations record their start / frontier seeding / per-shard
// merge accounting / completion as Telemetry.DebugEvents. Trace events
// format strings and allocate, so this is a development tool, not a
// production default. Debug events require telemetry to be on (any
// level above TelemetryOff).
func WithDebug(level DebugLevel) CompileOption {
	return func(ro *reqOptions) { ro.debug = level }
}

// WithPipelineMicrobatches sets the pipeline depth M for CompileSharded:
// the batch is split into M equal microbatches so pipeline stages
// overlap across chips, at the price of the bubble term charged for
// stage imbalance (scaleout.Partition.Price). The default (and any
// value <= 1) is no pipelining — one batch walks the stages in
// sequence, pure latency. Plain Compile ignores the option: a single
// chip has no pipeline to fill.
func WithPipelineMicrobatches(m int) CompileOption {
	return func(ro *reqOptions) { ro.microbatches = m }
}

// WithDetachOnCancel converts cancellation from discarded work into
// cache warm-up: when the request's context dies, the operator searches
// already in flight finish in the background (no new ones start) and
// their results enter the plan cache, so a retry of the same request
// resumes from warm entries. The caller still gets ctx.Err()
// immediately; on a shared pool the request's admission slots stay held
// until the detached work completes, so the budget keeps counting the
// work that is genuinely still running. A server can cap how many
// requests may run detached at once (Options.DetachLimit); beyond the
// cap, cancellation degrades to the plain kind — in-flight work stops
// and the slots come back.
func WithDetachOnCancel() CompileOption {
	return func(ro *reqOptions) { ro.detach = true }
}
