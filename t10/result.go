package t10

import (
	"time"

	"repro/internal/search"
)

// TelemetryLevel selects how much per-request telemetry a compile
// collects; see WithTelemetry. The zero value is TelemetryOff so the
// struct literal Telemetry{} is honest, but requests default to
// TelemetryBasic — the production-safe level is cheap enough to ride
// every request (the cold-search benchmark gates it at noise level).
type TelemetryLevel int

const (
	// TelemetryOff collects nothing: no collector is allocated and the
	// search runs exactly the pre-telemetry code path.
	TelemetryOff TelemetryLevel = iota

	// TelemetryBasic — the default — records per-stage wall times, cache
	// routes and the admission weight charged.
	TelemetryBasic

	// TelemetryFull additionally lifts the search-space counters
	// (filtered/priced/pruned/seeded, subtree cuts) from the cold
	// searches' shard merges.
	TelemetryFull
)

// DebugLevel selects the opt-in search trace; see WithDebug. Debug is
// separate from TelemetryLevel because it is priced differently: trace
// events allocate and format strings, so they are development
// observability, never a production default.
type DebugLevel int

const (
	// DebugOff records no trace events (the default).
	DebugOff DebugLevel = iota

	// DebugSearch records the cold searches' trace — enumeration start,
	// frontier seeding, per-shard merge accounting, completion — as
	// Telemetry.DebugEvents.
	DebugSearch
)

// Telemetry is the structured observability record of one Compile or
// Search request: where its wall time went, how its operator searches
// were answered, and what it was charged at admission.
//
// The four stage durations are disjoint phases of the request's wall
// clock, so their sum never exceeds Wall — the serving layer's soak
// test asserts exactly that invariant:
//
//   - AdmissionWait: queued in the shared worker budget before any work
//     (zero on private pools and the weight-0 fast path).
//   - ColdSearch: the operator-search phase. For a model compile this
//     is the wall time of the concurrent unique-operator loop — cache
//     probes included, since concurrent per-operator durations do not
//     decompose into disjoint wall time; the route counts say how much
//     of the phase was probes vs. enumeration. For a single-operator
//     Search it is the cold enumeration alone.
//   - CacheProbe: the sequential cache-resolution phase — for a model
//     compile the per-operator assembly re-fetch, for a Search the
//     memory/disk probe (and any wait on a deduplicated in-flight
//     search).
//   - Reconcile: the inter-operator memory reconciliation (§4.3.2);
//     zero for Search.
type Telemetry struct {
	// Level and Debug record what was collected, so a reader can tell a
	// genuine zero from "not measured".
	Level TelemetryLevel
	Debug DebugLevel

	AdmissionWait time.Duration
	CacheProbe    time.Duration
	ColdSearch    time.Duration
	Reconcile     time.Duration

	// Wall is the request's total in-compiler time, admission included.
	Wall time.Duration

	// AdmissionWeight is the worker-budget slots actually charged after
	// clamping (0 on private pools and the cache-probe fast path).
	AdmissionWeight int

	// Cache routes: how each unique operator search was answered (one
	// count per search — for a model compile they sum to the unique-op
	// count; assembly re-fetches are not counted).
	RouteMemory     int
	RouteDisk       int
	RouteRemote     int
	RouteFlightWait int
	RouteCold       int

	// Fusion outcome of this compile (WithFusion): FusedGroups is the
	// number of multi-op groups the pass formed, FusedOps the source
	// operators folded into them. Zero when fusion was off or nothing
	// matched a rule; always zero for a single-operator Search.
	FusedGroups int
	FusedOps    int

	// Search-space counters summed over this request's cold searches
	// (TelemetryFull only): the Fig 18 accounting of the work this
	// request actually performed — cached answers contribute nothing.
	Filtered    int
	Priced      int
	Pruned      int
	Seeded      int
	CutSubtrees int
	CutLeaves   int

	// DebugEvents is the opt-in search trace (WithDebug(DebugSearch));
	// nil otherwise.
	DebugEvents []search.DebugEvent
}

// StageSum returns AdmissionWait + CacheProbe + ColdSearch + Reconcile.
// The stages are disjoint wall phases, so StageSum ≤ Wall always holds
// — the well-formedness invariant the serving soak test asserts on
// every response.
func (t *Telemetry) StageSum() time.Duration {
	return t.AdmissionWait + t.CacheProbe + t.ColdSearch + t.Reconcile
}

// CompileResult is the result-bearing form of Compile: the executable
// plus the request's telemetry. Compile itself is a thin wrapper that
// discards the telemetry.
type CompileResult struct {
	Executable *Executable
	Telemetry  Telemetry
}

// SearchResult is the result-bearing form of Search.
type SearchResult struct {
	Result    *search.Result
	Telemetry Telemetry
}

// newCollector builds the per-request search collector for the
// resolved options, or nil when telemetry is off (the search then runs
// the exact pre-telemetry code path).
func (ro *reqOptions) newCollector() *search.Collector {
	if ro.telemetry <= TelemetryOff {
		return nil
	}
	return search.NewCollector(ro.debug > DebugOff)
}

// fill copies the collector's aggregates into the telemetry record:
// routes always, space counters at TelemetryFull, trace events when
// debug ran. Stage durations are the caller's job — they are phase
// walls, not collector sums.
func (t *Telemetry) fill(col *search.Collector) {
	if col == nil {
		return
	}
	tot := col.Snapshot()
	t.RouteMemory = int(tot.Routes[search.RouteMemory])
	t.RouteDisk = int(tot.Routes[search.RouteDisk])
	t.RouteRemote = int(tot.Routes[search.RouteRemote])
	t.RouteFlightWait = int(tot.Routes[search.RouteFlightWait])
	t.RouteCold = int(tot.Routes[search.RouteCold])
	t.FusedGroups = int(tot.FusedGroups)
	t.FusedOps = int(tot.FusedOps)
	if t.Level >= TelemetryFull {
		t.Filtered = int(tot.Filtered)
		t.Priced = int(tot.Priced)
		t.Pruned = int(tot.Pruned)
		t.Seeded = int(tot.Seeded)
		t.CutSubtrees = int(tot.CutSubtrees)
		t.CutLeaves = int(tot.CutLeaves)
	}
	t.DebugEvents = col.Events()
}
