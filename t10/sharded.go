package t10

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/perf"
	"repro/internal/scaleout"
)

// ShardedExecutable is a model compiled across several chips of one
// device generation: one single-chip Executable per pipeline stage plus
// the partition that says how activations move between them. It is
// simulatable end-to-end — per-stage chip simulation composed with the
// interconnect transfer schedule.
type ShardedExecutable struct {
	Model *graph.Model
	Spec  *device.Spec

	// Partition is the winning candidate: stage ranges, tensor-parallel
	// splits, boundary transfer schedule, priced totals. Its stage
	// handles alias the entries of Stages.
	Partition *scaleout.Partition

	// Stages holds the per-chip executables, index-aligned with
	// Partition.Stages. A stage with Split > 1 runs the same executable
	// on each of its chips (row-split inputs, replicated weights).
	Stages []*Executable

	CompileTime time.Duration
}

// Chips returns how many chips the executable occupies.
func (se *ShardedExecutable) Chips() int { return se.Partition.Chips }

// ShardedReport is the end-to-end simulation of a ShardedExecutable:
// per-stage single-chip reports composed through the partition's
// pipeline model.
type ShardedReport struct {
	Model  string
	Stages []*perf.Report

	// ComputeNs is Σ simulated stage time; TransferNs the interconnect
	// share (boundaries + all-gathers); BubbleNs the pipeline-imbalance
	// share of the steady-state term; TotalNs the end-to-end time of one
	// inference through the pipeline.
	ComputeNs  float64
	TransferNs float64
	BubbleNs   float64
	TotalNs    float64
}

// LatencyMs returns the end-to-end latency in milliseconds.
func (r *ShardedReport) LatencyMs() float64 { return r.TotalNs / 1e6 }

// Simulate lowers every stage onto its simulated chip and composes the
// stage times through the partition's pipeline cost model
// (scaleout.Partition.Price): transfers from the generation's
// interconnect descriptor, a bubble term when the batch is
// microbatched.
func (se *ShardedExecutable) Simulate() *ShardedReport {
	rep := &ShardedReport{Model: se.Model.Name}
	stageNs := make([]float64, len(se.Stages))
	for i, exe := range se.Stages {
		sr := exe.Simulate()
		rep.Stages = append(rep.Stages, sr)
		stageNs[i] = sr.TotalNs
		rep.ComputeNs += sr.TotalNs
	}
	rep.TotalNs, rep.TransferNs, rep.BubbleNs = se.Partition.Price(stageNs)
	return rep
}

// ShardedResult is CompileShardedWithResult's full return: the
// executable plus the outer search's accounting and the request
// telemetry aggregated across every stage compile.
type ShardedResult struct {
	Executable *ShardedExecutable

	// Search is the partition search outcome: the candidate list the
	// simulator chose from and the enumeration counters.
	Search *scaleout.Result

	Telemetry Telemetry
}

// CompileSharded partitions m across nChips chips of the compiler's
// device generation and compiles each pipeline stage with the ordinary
// single-chip pipeline (intra-op Pareto search + inter-op
// reconciliation, through the shared plan cache). The outer search
// enumerates pipeline cuts and tensor-parallel row splits, prices every
// candidate from the per-stage simulations plus the generation's
// Interconnect transfer model, and the finalists are re-priced with
// their simulated stage times so the simulator — not the analytic model
// — picks the winner.
//
// nChips == 1 degenerates to the plain single-chip compile: the only
// candidate is the whole model on one chip, compiled through exactly
// the same path as Compile, so the resulting stage executable is
// bit-identical to Compile's.
//
// A model too large for one chip (weights exceeding the SRAM) is the
// motivating case: single-chip compiles of oversized stages fail with
// *interop.InfeasibleError, those candidates are pruned, and a pipeline
// cut that fits wins. When no candidate fits at all, the error is a
// *scaleout.InfeasibleError wrapping the last per-stage cause.
func (c *Compiler) CompileSharded(ctx context.Context, m *graph.Model, nChips int, opts ...CompileOption) (*ShardedExecutable, error) {
	sr, err := c.CompileShardedWithResult(ctx, m, nChips, opts...)
	if err != nil {
		return nil, err
	}
	return sr.Executable, nil
}

// CompileShardedWithResult is CompileSharded returning the outer
// search's accounting (candidates, enumeration counters) and the
// request telemetry alongside the executable.
func (c *Compiler) CompileShardedWithResult(ctx context.Context, m *graph.Model, nChips int, opts ...CompileOption) (*ShardedResult, error) {
	ro := resolveReqOptions(opts)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if nChips < 1 {
		return nil, fmt.Errorf("t10: CompileSharded needs at least one chip, got %d", nChips)
	}
	if nChips > 1 && c.Spec.Interconnect == (device.Interconnect{}) {
		return nil, fmt.Errorf("t10: device %s has no interconnect descriptor; cannot scale out to %d chips",
			c.Spec.Name, nChips)
	}
	start := time.Now()
	tel := Telemetry{Level: ro.telemetry, Debug: ro.debug}
	leave, granted, wait, err := c.enter(ctx, ro.weight)
	if err != nil {
		return nil, err
	}
	defer leave()
	tel.AdmissionWait = wait
	tel.AdmissionWeight = granted
	ctx = withCredit(ctx, granted)
	col := ro.newCollector()

	// The per-chip leaf of the outer search. Stage compiles are memoized
	// by the search, so each (range, split) compiles and simulates once;
	// the plan cache underneath makes repeated op shapes warm across
	// stages. The whole-range unsplit stage is compiled from the
	// original model value, so the single-chip candidate is exactly what
	// Compile would have produced.
	simulated := map[*Executable]*perf.Report{}
	compile := func(sub *graph.Model) (any, float64, error) {
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		if sub.Name == m.Name {
			sub = m
		}
		exe, err := c.compileModel(ctx, ctx, sub, col, nil)
		if err != nil {
			return nil, 0, err
		}
		rep := exe.Simulate()
		simulated[exe] = rep
		return exe, rep.TotalNs, nil
	}

	res, err := scaleout.Search(m, c.Spec.Interconnect, scaleout.Config{
		NChips:       nChips,
		Microbatches: ro.microbatches,
	}, compile)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}

	// Selection by simulation: re-price every finalist with its stages'
	// simulated times and keep the winner. The analytic transfer model
	// still prices the interconnect share — only the stage compute is
	// replaced by measurement.
	best, bestNs := res.Best, math.Inf(1)
	for _, cand := range res.Candidates {
		stageNs := make([]float64, len(cand.Stages))
		for i := range cand.Stages {
			stageNs[i] = simulated[cand.Stages[i].Handle.(*Executable)].TotalNs
		}
		if total, _, _ := cand.Price(stageNs); total < bestNs {
			best, bestNs = cand, total
		}
	}

	stages := make([]*Executable, len(best.Stages))
	for i := range best.Stages {
		stages[i] = best.Stages[i].Handle.(*Executable)
	}
	tel.fill(col)
	tel.Wall = time.Since(start)
	return &ShardedResult{
		Executable: &ShardedExecutable{
			Model: m, Spec: c.Spec,
			Partition: best, Stages: stages,
			CompileTime: time.Since(start),
		},
		Search:    res,
		Telemetry: tel,
	}, nil
}
