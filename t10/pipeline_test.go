package t10

import (
	"fmt"
	"testing"

	"repro/internal/device"
	"repro/internal/models"
	"repro/internal/plancache"
)

// planFingerprint renders every plan selection of an executable — the
// idle and active compute-shift plan of each operator — so two compiles
// can be compared bit-for-bit.
func planFingerprint(e *Executable) string {
	out := ""
	for i := range e.Schedule.Assignments {
		a := &e.Schedule.Assignments[i]
		out += fmt.Sprintf("op%d %s\nidle %v %s\nactive %v %s\n",
			i, e.Model.Ops[i].Name,
			a.Idle.Est, a.Idle.Plan.String(),
			a.Active.Est, a.Active.Plan.String())
	}
	return out
}

// TestParallelCompilationMatchesSequential is the pipeline's
// equivalence gate: the concurrent, cache-backed path must select
// bit-identical plans to the Workers=1 sequential reference, warm or
// cold.
func TestParallelCompilationMatchesSequential(t *testing.T) {
	spec := device.IPUMK2()

	seqOpts := DefaultOptions()
	seqOpts.Workers = 1
	seq, err := New(spec, seqOpts)
	if err != nil {
		t.Fatal(err)
	}

	parOpts := DefaultOptions() // Workers=0 → GOMAXPROCS
	par, err := New(spec, parOpts)
	if err != nil {
		t.Fatal(err)
	}

	m := models.BERT(8)
	seqExe, err := seq.CompileModel(m)
	if err != nil {
		t.Fatal(err)
	}
	coldExe, err := par.CompileModel(models.BERT(8))
	if err != nil {
		t.Fatal(err)
	}
	warmExe, err := par.CompileModel(models.BERT(8)) // fully cached
	if err != nil {
		t.Fatal(err)
	}

	want := planFingerprint(seqExe)
	if got := planFingerprint(coldExe); got != want {
		t.Error("parallel compilation selected different plans than sequential")
	}
	if got := planFingerprint(warmExe); got != want {
		t.Error("cached compilation selected different plans than sequential")
	}
	if warmExe.CompileTime > coldExe.CompileTime {
		t.Logf("warm compile (%s) not faster than cold (%s)",
			warmExe.CompileTime, coldExe.CompileTime)
	}
}

// TestRepeatedCompileHitsCache mirrors the serving scenario: compiling
// the same model twice must answer every repeated encoder operator
// from the plan cache.
func TestRepeatedCompileHitsCache(t *testing.T) {
	c, err := New(device.IPUMK2(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.CompileModel(models.BERT(8)); err != nil {
		t.Fatal(err)
	}
	before := c.CacheStats()
	m := models.BERT(8)
	if _, err := c.CompileModel(m); err != nil {
		t.Fatal(err)
	}
	after := c.CacheStats()
	hits := after.Hits - before.Hits
	if hits < int64(len(m.Ops)) {
		t.Errorf("second compile produced %d cache hits for %d ops", hits, len(m.Ops))
	}
	if after.Misses != before.Misses {
		t.Errorf("second compile missed the cache %d times", after.Misses-before.Misses)
	}
}

// TestSharedCacheAcrossCompilers is the harness/serving configuration:
// two compilers over one cache, where the second never searches.
func TestSharedCacheAcrossCompilers(t *testing.T) {
	shared := plancache.New(plancache.Options{})
	opts := DefaultOptions()
	opts.SharedCache = shared

	c1, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.CompileModel(models.BERT(1)); err != nil {
		t.Fatal(err)
	}
	misses := shared.Stats().Misses

	c2, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.CompileModel(models.BERT(1)); err != nil {
		t.Fatal(err)
	}
	if got := shared.Stats().Misses; got != misses {
		t.Errorf("second compiler missed the shared cache %d times", got-misses)
	}
}

// TestDiskCacheAcrossCompilerInstances simulates two t10c invocations
// sharing a cache dir: the second compiler (fresh in-memory cache)
// answers from disk and selects identical plans.
func TestDiskCacheAcrossCompilerInstances(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.CacheDir = dir

	c1, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := c1.CompileModel(models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.CacheStats(); st.DiskWrites == 0 {
		t.Fatal("first compile wrote nothing to the disk layer")
	}

	c2, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c2.CompileModel(models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	st := c2.CacheStats()
	if st.DiskHits == 0 {
		t.Error("second compiler never hit the disk layer")
	}
	if planFingerprint(e1) != planFingerprint(e2) {
		t.Error("disk-cached compile selected different plans")
	}
}
