package t10

// The v1 entry points, kept as one-line shims so existing callers keep
// compiling (and as the fixtures of the v1/v2 equivalence test). Each
// is exactly its v2 replacement with default request options, so plans,
// cache contents and error behaviour are identical by construction —
// the equivalence test pins that anyway.

import (
	"context"

	"repro/internal/costmodel"
	"repro/internal/expr"
	"repro/internal/graph"
	"repro/internal/search"
)

// CompileModel searches every operator, reconciles memory across
// operators and returns the executable, with no deadline.
//
// Deprecated: use Compile, which takes a context and per-request
// options.
func (c *Compiler) CompileModel(m *graph.Model) (*Executable, error) {
	return c.Compile(context.Background(), m)
}

// CompileModelCtx is CompileModel under a context.
//
// Deprecated: use Compile.
func (c *Compiler) CompileModelCtx(ctx context.Context, m *graph.Model) (*Executable, error) {
	return c.Compile(ctx, m)
}

// SearchOp exposes the intra-operator search with no deadline.
//
// Deprecated: use Search, which takes a context and per-request
// options.
func (c *Compiler) SearchOp(e *expr.Expr) (*search.Result, error) {
	return c.Search(context.Background(), e)
}

// SearchOpCtx is SearchOp under a context.
//
// Deprecated: use Search.
func (c *Compiler) SearchOpCtx(ctx context.Context, e *expr.Expr) (*search.Result, error) {
	return c.Search(ctx, e)
}

// RegisterCostFunc installs a custom cost function for the named
// operator by mutating the compiler after construction.
//
// Deprecated: pass WithCostFunc (or WithMonotoneCostFunc) to New
// instead. Construction-scoped registration makes the compiler
// immutable and its cache keys permanent; RegisterCostFunc still works,
// but a registration racing an in-flight search for the same operator
// leaves that one result uncacheable (the searcher's fingerprint
// recheck discards it) — the exact hazard the v2 API removes.
func (c *Compiler) RegisterCostFunc(opName string, f costmodel.CostFunc) {
	c.CM.RegisterCustom(opName, f)
}
