package t10

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/dtype"
	"repro/internal/expr"
	"repro/internal/models"
)

// wellFormed asserts the telemetry invariants every successful request
// must satisfy: stage sums bounded by the wall, route counts covering
// exactly the unique operator searches.
func wellFormed(t *testing.T, tel *Telemetry, uniqueOps int) {
	t.Helper()
	if tel.Wall <= 0 {
		t.Fatalf("wall = %v, want > 0", tel.Wall)
	}
	if sum := tel.StageSum(); sum > tel.Wall {
		t.Fatalf("stage sum %v exceeds wall %v", sum, tel.Wall)
	}
	if got := tel.RouteMemory + tel.RouteDisk + tel.RouteFlightWait + tel.RouteCold; got != uniqueOps {
		t.Fatalf("routes sum to %d, want the %d unique operator searches", got, uniqueOps)
	}
}

// TestCompileWithResultTelemetry walks one model through all three
// cache temperatures and checks the telemetry tells the story: a cold
// compile routes every unique op to the enumerator, a repeat answers
// from memory, and a fresh process over the same cache dir answers from
// disk. Plan selection is bit-identical to the plain Compile wrapper
// throughout.
func TestCompileWithResultTelemetry(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.CacheDir = dir
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m := models.BERT(1)
	est, err := c.EstimateCost(m)
	if err != nil {
		t.Fatal(err)
	}
	uniq := est.Ops

	cold, err := c.CompileWithResult(context.Background(), m, WithTelemetry(TelemetryFull))
	if err != nil {
		t.Fatal(err)
	}
	tel := &cold.Telemetry
	wellFormed(t, tel, uniq)
	if tel.Level != TelemetryFull {
		t.Fatalf("level = %v, want TelemetryFull", tel.Level)
	}
	if tel.RouteCold != uniq {
		t.Fatalf("cold compile: RouteCold = %d, want %d", tel.RouteCold, uniq)
	}
	if tel.ColdSearch <= 0 || tel.Reconcile <= 0 {
		t.Fatalf("cold compile: ColdSearch = %v, Reconcile = %v, want both > 0", tel.ColdSearch, tel.Reconcile)
	}
	if tel.Filtered == 0 || tel.Priced == 0 {
		t.Fatalf("TelemetryFull cold compile collected no space counters: %+v", tel)
	}

	warm, err := c.CompileWithResult(context.Background(), models.BERT(1), WithTelemetry(TelemetryFull))
	if err != nil {
		t.Fatal(err)
	}
	wtel := &warm.Telemetry
	wellFormed(t, wtel, uniq)
	if wtel.RouteMemory != uniq || wtel.RouteCold != 0 {
		t.Fatalf("warm compile routes: %+v, want all %d from memory", wtel, uniq)
	}
	if wtel.Filtered != 0 {
		t.Fatalf("warm compile reported %d filtered candidates, want 0 (no search ran)", wtel.Filtered)
	}
	sameExecutables(t, cold.Executable, warm.Executable)

	// a fresh compiler over the same dir: cold memory, warm disk
	c2, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	disk, err := c2.CompileWithResult(context.Background(), models.BERT(1), WithTelemetry(TelemetryFull))
	if err != nil {
		t.Fatal(err)
	}
	dtel := &disk.Telemetry
	wellFormed(t, dtel, uniq)
	if dtel.RouteDisk != uniq || dtel.RouteCold != 0 {
		t.Fatalf("disk-warm compile routes: %+v, want all %d from disk", dtel, uniq)
	}
	sameExecutables(t, cold.Executable, disk.Executable)

	// the plain wrapper selects the same plans
	exe, err := c2.Compile(context.Background(), models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	sameExecutables(t, cold.Executable, exe)
}

// TestSearchWithResultRoutesAndDebug pins the single-operator telemetry:
// route classification across temperatures, the opt-in debug trace, and
// the TelemetryOff contract (nothing collected, plans identical).
func TestSearchWithResultRoutesAndDebug(t *testing.T) {
	c, err := New(device.IPUMK2(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	e := expr.MatMul("mm", 256, 256, 512, dtype.FP16)

	cold, err := c.SearchWithResult(context.Background(), e,
		WithTelemetry(TelemetryFull), WithDebug(DebugSearch))
	if err != nil {
		t.Fatal(err)
	}
	tel := &cold.Telemetry
	wellFormed(t, tel, 1)
	if tel.RouteCold != 1 {
		t.Fatalf("cold search routes: %+v, want 1 cold", tel)
	}
	if tel.ColdSearch <= 0 {
		t.Fatalf("cold search: ColdSearch = %v, want > 0", tel.ColdSearch)
	}
	evs := tel.DebugEvents
	if len(evs) < 2 || evs[0].Event != "search.cold" || evs[len(evs)-1].Event != "search.done" {
		t.Fatalf("debug trace malformed: %d events", len(evs))
	}

	warm, err := c.SearchWithResult(context.Background(), e, WithTelemetry(TelemetryBasic))
	if err != nil {
		t.Fatal(err)
	}
	wtel := &warm.Telemetry
	wellFormed(t, wtel, 1)
	if wtel.RouteMemory != 1 || wtel.ColdSearch != 0 {
		t.Fatalf("warm search: %+v, want a pure memory hit", wtel)
	}
	if wtel.DebugEvents != nil {
		t.Fatal("debug events collected without WithDebug")
	}
	if wtel.Filtered != 0 {
		t.Fatal("TelemetryBasic lifted space counters")
	}

	// TelemetryOff: same plans, empty record
	off, err := c.SearchWithResult(context.Background(), e, WithTelemetry(TelemetryOff))
	if err != nil {
		t.Fatal(err)
	}
	if off.Telemetry.Level != TelemetryOff || off.Telemetry.RouteMemory != 0 {
		t.Fatalf("TelemetryOff collected routes: %+v", off.Telemetry)
	}
	if len(off.Result.Pareto) != len(cold.Result.Pareto) {
		t.Fatalf("pareto sizes differ across telemetry levels: %d vs %d",
			len(off.Result.Pareto), len(cold.Result.Pareto))
	}
	for i := range cold.Result.Pareto {
		if off.Result.Pareto[i].Plan.String() != cold.Result.Pareto[i].Plan.String() {
			t.Fatalf("pareto[%d] differs across telemetry levels", i)
		}
	}
}

// TestTelemetryNeverChangesSelection compiles one model at the two
// telemetry extremes on fresh compilers and requires bit-identical
// executables — collection observes the search, it never steers it.
// (The engine-level equivalence suite pins the same property against
// the brute-force reference.)
func TestTelemetryNeverChangesSelection(t *testing.T) {
	build := func(opts ...CompileOption) *Executable {
		t.Helper()
		c, err := New(device.IPUMK2(), DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		cr, err := c.CompileWithResult(context.Background(), models.BERT(1), opts...)
		if err != nil {
			t.Fatal(err)
		}
		return cr.Executable
	}
	off := build(WithTelemetry(TelemetryOff))
	full := build(WithTelemetry(TelemetryFull), WithDebug(DebugSearch))
	sameExecutables(t, off, full)
}

// TestDetachLimitCapsDetachedRequests pins the cap deterministically by
// occupying the only detach slot out-of-band: a cancellation that wants
// to detach is degraded to the plain kind (counted in Rejected), and
// once the slot frees, the next cancellation detaches and warms the
// cache as usual.
func TestDetachLimitCapsDetachedRequests(t *testing.T) {
	gate := NewDetachLimit(1)
	opts := DefaultOptions()
	opts.DetachLimit = gate
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dead, cancel := context.WithCancel(context.Background())
	cancel()

	if !gate.tryEnter() {
		t.Fatal("could not occupy the detach slot")
	}
	e := expr.MatMul("capped", 512, 512, 1024, dtype.FP16)
	if _, err := c.Search(dead, e, WithDetachOnCancel()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if gate.Rejected() != 1 {
		t.Fatalf("Rejected = %d, want 1 (the cap degraded the detach)", gate.Rejected())
	}
	if gate.Active() != 1 {
		t.Fatalf("Active = %d, want only the out-of-band occupant", gate.Active())
	}
	gate.exit()

	// with the slot free, detach proceeds: the background search lands in
	// the cache and the gauge returns to zero
	e2 := expr.MatMul("granted", 512, 512, 1024, dtype.FP16)
	if _, err := c.Search(dead, e2, WithDetachOnCancel()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		est, err := c.EstimateOpCost(e2)
		if err == nil && est.CachedOps == 1 && gate.Active() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("granted detach never drained: Active=%d", gate.Active())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if gate.Rejected() != 1 {
		t.Fatalf("Rejected = %d after a granted detach, want still 1", gate.Rejected())
	}
}

// TestEstimateCostDiskWarm pins the disk-aware pricing: a request whose
// misses are all answerable from the disk layer weighs 1 — above the
// weight-0 memory fast path, below a cold request's fop-scaled weight.
func TestEstimateCostDiskWarm(t *testing.T) {
	dir := t.TempDir()
	opts := DefaultOptions()
	opts.CacheDir = dir
	c, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	m := models.BERT(1)
	if _, err := c.Compile(context.Background(), m); err != nil {
		t.Fatal(err)
	}

	// a fresh compiler over the same dir: memory cold, disk warm
	c2, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	est, err := c2.EstimateCost(models.BERT(1))
	if err != nil {
		t.Fatal(err)
	}
	if est.DiskOps != est.Ops || est.CachedOps != 0 || est.ColdOps != 0 {
		t.Fatalf("disk-warm estimate: %+v, want every op disk-warm", est)
	}
	if w := est.Weight(8); w != 1 {
		t.Fatalf("disk-warm weight = %d, want 1", w)
	}

	e := expr.MatMul("op", 256, 256, 512, dtype.FP16)
	if _, err := c2.Search(context.Background(), e); err != nil {
		t.Fatal(err)
	}
	opEst, err := c2.EstimateOpCost(e)
	if err != nil {
		t.Fatal(err)
	}
	if opEst.CachedOps != 1 || opEst.Weight(8) != 0 {
		t.Fatalf("memory-warm op estimate: %+v, want weight 0", opEst)
	}
	c3, err := New(device.IPUMK2(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opEst, err = c3.EstimateOpCost(e)
	if err != nil {
		t.Fatal(err)
	}
	if opEst.DiskOps != 1 || opEst.Weight(8) != 1 {
		t.Fatalf("disk-warm op estimate: %+v, want DiskOps 1 / weight 1", opEst)
	}
}
