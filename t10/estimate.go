package t10

import (
	"repro/internal/expr"
	"repro/internal/graph"
)

// CostEstimate summarizes the EstimateCost pre-pass: how much search
// work a request would trigger, from cache probes and rule-filtered
// space sizes alone — no Pareto search runs. It feeds cost-weighted
// admission (see WithAdmissionWeight): a fully cached request is
// nearly free, a cold large-model compile is not, and a load-shedding
// server should not charge them the same.
type CostEstimate struct {
	// Ops is the number of unique operator shapes in the request
	// (duplicates share one search, so only unique shapes cost).
	Ops int

	// CachedOps counts unique shapes answerable from the in-memory
	// plan cache right now (a stat-free probe; see
	// search.Searcher.Cached).
	CachedOps int

	// DiskOps counts unique shapes that miss memory but have a record
	// in the disk layer (a stat-only probe, no read): warmer than cold
	// — a read and a decode instead of a Pareto search — but not free,
	// so disk-warm requests price above fully cached ones and below
	// cold ones.
	DiskOps int

	// ColdOps counts unique shapes that would run a fresh Pareto
	// search.
	ColdOps int

	// ColdFops is the total number of rule-filtered operator partition
	// candidates across the cold shapes — the search-work proxy: every
	// partition candidate expands into its temporal-factor subtree, so
	// the count tracks how much enumeration a compile would pay.
	ColdFops int
}

// WeightFopUnit is the number of cold partition candidates that add
// one admission slot beyond the first: a single cold matmul (a few
// dozen candidates) stays near weight 1-2, while a cold multi-layer
// model climbs toward the pool capacity.
const WeightFopUnit = 64

// Weight maps the estimate onto admission slots for a shared pool of
// the given capacity: 0 for fully memory-cached requests (the
// cache-probe fast path — skip admission entirely), 1 for requests
// whose misses are all disk-warm (a read and a decode is real work,
// but one slot's worth no matter how many records it touches),
// otherwise one slot plus one per WeightFopUnit cold partition
// candidates, clamped to the capacity so a single huge compile can
// always be admitted.
func (e CostEstimate) Weight(capacity int) int {
	if e.ColdOps == 0 {
		if e.DiskOps == 0 {
			return 0
		}
		return 1
	}
	w := 1 + e.ColdFops/WeightFopUnit
	if capacity > 0 && w > capacity {
		w = capacity
	}
	return w
}

// EstimateCost predicts how much search work compiling m would
// trigger, without running any of it: unique operator shapes are
// probed against the in-memory plan cache, then the disk layer (by
// stat alone), and the cold remainder is priced by its rule-filtered
// partition-candidate count. The
// estimate is advisory — a concurrent compile or eviction can change
// the cache between the estimate and the compile — which is exactly
// the right contract for admission control.
func (c *Compiler) EstimateCost(m *graph.Model) (CostEstimate, error) {
	if err := m.Validate(); err != nil {
		return CostEstimate{}, err
	}
	// Under WithFusion, Compile searches the fused graph's composed
	// expressions — which carry different cache fingerprints than the
	// source ops — so the estimate must probe exactly those, or every
	// warm fused compile would be mispriced as cold (and the weight-0
	// probe fast path would never trigger).
	if c.fusion.Enabled() {
		fg, err := graph.Fuse(m, c.fusion)
		if err != nil {
			return CostEstimate{}, err
		}
		m = fg.Fused
	}
	var est CostEstimate
	seen := make(map[string]bool, len(m.Ops))
	for i := range m.Ops {
		e := m.Ops[i].Expr
		sig := e.Signature()
		if seen[sig] {
			continue
		}
		seen[sig] = true
		est.Ops++
		if c.searcher.Cached(e) {
			est.CachedOps++
			continue
		}
		if c.searcher.CachedOnDisk(e) {
			est.DiskOps++
			continue
		}
		est.ColdOps++
		est.ColdFops += c.searcher.FopCount(e)
	}
	return est, nil
}

// EstimateOpCost is EstimateCost for a single-operator search.
func (c *Compiler) EstimateOpCost(e *expr.Expr) (CostEstimate, error) {
	if err := e.Validate(); err != nil {
		return CostEstimate{}, err
	}
	est := CostEstimate{Ops: 1}
	if c.searcher.Cached(e) {
		est.CachedOps = 1
		return est, nil
	}
	if c.searcher.CachedOnDisk(e) {
		est.DiskOps = 1
		return est, nil
	}
	est.ColdOps = 1
	est.ColdFops = c.searcher.FopCount(e)
	return est, nil
}
